/**
 * @file
 * Tests for SoA-batched trajectory execution (sim/batch_state.hh, the
 * batched kernels in sim/kernels.hh, sim::executeBatched, and the
 * TrajectoryRunner SoA arm): pack/unpack round trips, bit-identity of
 * every batched kernel and of whole-plan batched execution against the
 * per-lane serial path — including non-power-of-two remainder lanes,
 * chunked pool sweeps, and the per-lane noise divergence — plus the
 * planBatch / QvConfig wiring of the third parallel axis.
 */

#include <cmath>
#include <stdexcept>
#include <utility>

#include <gtest/gtest.h>

#include "circuit/circuit.hh"
#include "circuit/noise.hh"
#include "linalg/random.hh"
#include "obs/obs.hh"
#include "qop/gates.hh"
#include "qv/qv.hh"
#include "sim/batch.hh"
#include "sim/batch_state.hh"
#include "sim/engine.hh"
#include "sim/kernels.hh"
#include "sim_test_util.hh"

namespace {

using namespace crisc;
using linalg::Complex;
using linalg::CVector;
using linalg::Matrix;
using testutil::randomState;

bool
bitIdentical(const CVector &a, const CVector &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].real() != b[i].real() || a[i].imag() != b[i].imag())
            return false;
    return true;
}

/** One KernelOp of every kind on an n = 10 register, including a dense
 *  k = 3 fallback — the full dispatch surface of executeBatched. */
std::vector<sim::KernelOp>
opsOfEveryKind(linalg::Rng &rng)
{
    std::vector<sim::KernelOp> ops;
    {
        sim::KernelOp op;
        op.kind = sim::KernelKind::OneQ;
        op.q0 = 4;
        const Matrix u = linalg::haarUnitary(rng, 2);
        for (std::size_t i = 0; i < 4; ++i)
            op.m[i] = u(i / 2, i % 2);
        ops.push_back(op);
    }
    {
        sim::KernelOp op;
        op.kind = sim::KernelKind::OneQDiag;
        op.q0 = 9; // shortest stride: the per-state scalar-fallback band.
        const Matrix rz = qop::rz(0.377);
        op.m[0] = rz(0, 0);
        op.m[1] = rz(1, 1);
        ops.push_back(op);
    }
    {
        sim::KernelOp op;
        op.kind = sim::KernelKind::TwoQ;
        op.q0 = 2;
        op.q1 = 8;
        const Matrix u = linalg::haarUnitary(rng, 4);
        for (std::size_t i = 0; i < 16; ++i)
            op.m[i] = u(i / 4, i % 4);
        ops.push_back(op);
    }
    {
        sim::KernelOp op;
        op.kind = sim::KernelKind::TwoQDiag;
        op.q0 = 9;
        op.q1 = 1;
        op.m[0] = Complex{1.0, 0.0};
        op.m[1] = std::polar(1.0, 0.7);
        op.m[2] = std::polar(1.0, -0.2);
        op.m[3] = std::polar(1.0, 1.9);
        ops.push_back(op);
    }
    {
        sim::KernelOp op;
        op.kind = sim::KernelKind::Dense;
        op.dense = linalg::haarUnitary(rng, 8);
        op.qubits = {7, 1, 5};
        ops.push_back(op);
    }
    return ops;
}

TEST(BatchState, ValidatesArguments)
{
    EXPECT_THROW(sim::BatchState(4, 0), std::invalid_argument);
    EXPECT_THROW(sim::BatchState::pack({}), std::invalid_argument);
    EXPECT_THROW(sim::BatchState::pack({CVector(3)}),
                 std::invalid_argument);

    sim::BatchState batch(3, 2);
    EXPECT_THROW(batch.packLane(2, CVector(8)), std::invalid_argument);
    EXPECT_THROW(batch.packLane(0, CVector(4)), std::invalid_argument);
    EXPECT_THROW(batch.unpackLane(2), std::invalid_argument);
}

TEST(BatchState, InitializesEveryLaneToGroundState)
{
    const sim::BatchState batch(3, 5);
    EXPECT_EQ(batch.numQubits(), 3u);
    EXPECT_EQ(batch.dim(), 8u);
    EXPECT_EQ(batch.batch(), 5u);
    for (std::size_t l = 0; l < 5; ++l) {
        const CVector amps = batch.unpackLane(l);
        EXPECT_EQ(amps[0], (Complex{1.0, 0.0}));
        for (std::size_t i = 1; i < amps.size(); ++i)
            EXPECT_EQ(amps[i], (Complex{0.0, 0.0}));
    }
}

TEST(BatchState, PackUnpackRoundTripIsIdentity)
{
    linalg::Rng rng(201);
    const std::size_t n = 6;
    std::vector<CVector> states;
    for (std::size_t t = 0; t < 5; ++t)
        states.push_back(randomState(rng, n));

    const sim::BatchState batch = sim::BatchState::pack(states);
    EXPECT_EQ(batch.batch(), 5u);
    EXPECT_EQ(batch.numQubits(), n);
    const std::vector<CVector> out = batch.unpack();
    ASSERT_EQ(out.size(), states.size());
    for (std::size_t t = 0; t < states.size(); ++t) {
        EXPECT_TRUE(bitIdentical(out[t], states[t])) << "lane " << t;
        // amp() reads the same values the unpack produced.
        for (std::size_t i = 0; i < states[t].size(); ++i)
            EXPECT_EQ(batch.amp(i, t), states[t][i]);
    }
}

TEST(BatchKernels, ScalarBatchMatchesPerLaneScalar)
{
    // The scalar batched references must equal running the scalar
    // serial kernel on every unpacked lane, bit for bit, for any batch
    // width (including remainder-only widths below the SIMD lane
    // count).
    linalg::Rng rng(202);
    const std::size_t n = 7;
    const Matrix u2 = linalg::haarUnitary(rng, 2);
    const Complex m2[4] = {u2(0, 0), u2(0, 1), u2(1, 0), u2(1, 1)};
    const Matrix u4 = linalg::haarUnitary(rng, 4);
    const Matrix rz = qop::rz(0.91);
    const Complex d4[4] = {Complex{1.0, 0.0}, std::polar(1.0, 0.4),
                           std::polar(1.0, -1.1), std::polar(1.0, 2.2)};
    const Matrix dense = linalg::haarUnitary(rng, 8);
    const std::vector<std::size_t> denseQubits{5, 0, 3};

    for (const std::size_t B : {std::size_t{1}, std::size_t{3},
                                std::size_t{8}}) {
        std::vector<CVector> states;
        for (std::size_t t = 0; t < B; ++t)
            states.push_back(randomState(rng, n));

        for (int which = 0; which < 6; ++which) {
            sim::BatchState batch = sim::BatchState::pack(states);
            std::vector<CVector> expect = states;
            for (std::size_t q = 0; q < n; ++q) {
                switch (which) {
                  case 0:
                    sim::scalar::apply1qBatch(batch.re(), batch.im(), n,
                                              B, q, m2);
                    for (CVector &e : expect)
                        sim::scalar::apply1q(e.data(), n, q, m2);
                    break;
                  case 1:
                    sim::scalar::apply1qDiagBatch(batch.re(), batch.im(),
                                                  n, B, q, rz(0, 0),
                                                  rz(1, 1));
                    for (CVector &e : expect)
                        sim::scalar::apply1qDiag(e.data(), n, q, rz(0, 0),
                                                 rz(1, 1));
                    break;
                  case 2:
                    sim::scalar::applyPauliBatch(batch.re(), batch.im(),
                                                 n, B, q, 1 + q % 3);
                    for (CVector &e : expect)
                        sim::scalar::applyPauli(e.data(), n, q,
                                                1 + q % 3);
                    break;
                  case 3:
                    if (q + 1 >= n)
                        continue;
                    sim::scalar::apply2qBatch(batch.re(), batch.im(), n,
                                              B, q, q + 1, u4.data());
                    for (CVector &e : expect)
                        sim::scalar::apply2q(e.data(), n, q, q + 1,
                                             u4.data());
                    break;
                  case 4:
                    if (q + 1 >= n)
                        continue;
                    sim::scalar::apply2qDiagBatch(batch.re(), batch.im(),
                                                  n, B, q + 1, q, d4);
                    for (CVector &e : expect)
                        sim::scalar::apply2qDiag(e.data(), n, q + 1, q,
                                                 d4);
                    break;
                  case 5:
                    if (q != 0)
                        continue;
                    sim::scalar::applyDenseBatch(batch.re(), batch.im(),
                                                 n, B, dense,
                                                 denseQubits);
                    for (CVector &e : expect)
                        sim::applyDense(e.data(), n, dense, denseQubits);
                    break;
                }
            }
            for (std::size_t t = 0; t < B; ++t)
                EXPECT_TRUE(bitIdentical(batch.unpackLane(t), expect[t]))
                    << "which=" << which << " B=" << B << " lane=" << t;
        }
    }

    EXPECT_THROW(
        sim::scalar::applyPauliBatch(nullptr, nullptr, 1, 1, 0, 4),
        std::invalid_argument);
}

TEST(BatchKernels, DispatchBatchMatchesPerLaneDispatch)
{
    // The dispatching batched kernels (SIMD lane loop + scalar tail)
    // must equal the dispatching serial kernels per lane, bit for bit.
    // Pauli matters most: the serial kernel's negation flavour depends
    // on the sweep stride (AVX2 vectors negate as 0 - x, the scalar
    // fallback as -x, which differ on signed zeros), and the batched
    // kernel must replay it per (n, qubit).
    linalg::Rng rng(203);
    const std::size_t n = 7;
    const Matrix u2 = linalg::haarUnitary(rng, 2);
    const Complex m2[4] = {u2(0, 0), u2(0, 1), u2(1, 0), u2(1, 1)};
    const Matrix u4 = linalg::haarUnitary(rng, 4);
    const Matrix rz = qop::rz(0.13);
    const Complex d4[4] = {std::polar(1.0, 0.3), std::polar(1.0, -0.8),
                           Complex{1.0, 0.0}, std::polar(1.0, 1.5)};
    const Matrix dense = linalg::haarUnitary(rng, 8);
    const std::vector<std::size_t> denseQubits{6, 2, 4};

    for (const std::size_t B : {std::size_t{1}, std::size_t{2},
                                std::size_t{5}, std::size_t{8}}) {
        std::vector<CVector> states;
        for (std::size_t t = 0; t < B; ++t) {
            // |0...0>-adjacent states carry exact zeros, the inputs on
            // which the two negation flavours can be told apart.
            CVector s(std::size_t{1} << n, Complex{0.0, 0.0});
            s[0] = 1.0;
            sim::apply1q(s.data(), n, rng.index(n), m2);
            states.push_back(std::move(s));
        }

        for (std::size_t q = 0; q < n; ++q) {
            for (std::size_t pauli = 1; pauli <= 3; ++pauli) {
                sim::BatchState batch = sim::BatchState::pack(states);
                std::vector<CVector> expect = states;
                sim::applyPauliBatch(batch.re(), batch.im(), n, B, q,
                                     pauli);
                for (CVector &e : expect)
                    sim::applyPauli(e.data(), n, q, pauli);
                for (std::size_t t = 0; t < B; ++t)
                    EXPECT_TRUE(
                        bitIdentical(batch.unpackLane(t), expect[t]))
                        << "pauli=" << pauli << " q=" << q << " B=" << B
                        << " lane=" << t;
            }
        }

        std::vector<CVector> randoms;
        for (std::size_t t = 0; t < B; ++t)
            randoms.push_back(randomState(rng, n));
        sim::BatchState batch = sim::BatchState::pack(randoms);
        std::vector<CVector> expect = randoms;
        for (std::size_t q = 0; q < n; ++q) {
            sim::apply1qBatch(batch.re(), batch.im(), n, B, q, m2);
            sim::apply1qDiagBatch(batch.re(), batch.im(), n, B, q,
                                  rz(0, 0), rz(1, 1));
            for (CVector &e : expect) {
                sim::apply1q(e.data(), n, q, m2);
                sim::apply1qDiag(e.data(), n, q, rz(0, 0), rz(1, 1));
            }
            if (q + 1 < n) {
                sim::apply2qBatch(batch.re(), batch.im(), n, B, q, q + 1,
                                  u4.data());
                sim::apply2qDiagBatch(batch.re(), batch.im(), n, B,
                                      q + 1, q, d4);
                for (CVector &e : expect) {
                    sim::apply2q(e.data(), n, q, q + 1, u4.data());
                    sim::apply2qDiag(e.data(), n, q + 1, q, d4);
                }
            }
        }
        sim::applyDenseBatch(batch.re(), batch.im(), n, B, dense,
                             denseQubits);
        for (CVector &e : expect)
            sim::applyDense(e.data(), n, dense, denseQubits);
        for (std::size_t t = 0; t < B; ++t)
            EXPECT_TRUE(bitIdentical(batch.unpackLane(t), expect[t]))
                << "B=" << B << " lane=" << t;
    }
}

TEST(BatchKernels, PauliLaneMatchesSerialAndLeavesOtherLanesAlone)
{
    // applyPauliLane is the per-lane divergence primitive: it must
    // match sim::applyPauli on that lane (including its stride-
    // dependent negation flavour on exact zeros) and touch no other
    // lane.
    const std::size_t n = 6;
    const std::size_t B = 5;
    for (std::size_t q = 0; q < n; ++q) {
        for (std::size_t pauli = 1; pauli <= 3; ++pauli) {
            std::vector<CVector> states;
            for (std::size_t t = 0; t < B; ++t) {
                CVector s(std::size_t{1} << n, Complex{0.0, 0.0});
                s[(t * 7) % s.size()] = 1.0;
                states.push_back(std::move(s));
            }
            sim::BatchState batch = sim::BatchState::pack(states);
            const std::size_t lane = (q + pauli) % B;
            sim::applyPauliLane(batch.re(), batch.im(), n, B, lane, q,
                                pauli);
            std::vector<CVector> expect = states;
            sim::applyPauli(expect[lane].data(), n, q, pauli);
            for (std::size_t t = 0; t < B; ++t)
                EXPECT_TRUE(bitIdentical(batch.unpackLane(t), expect[t]))
                    << "pauli=" << pauli << " q=" << q << " lane=" << t;
        }
    }
    sim::BatchState batch(2, 1);
    EXPECT_THROW(
        sim::applyPauliLane(batch.re(), batch.im(), 2, 1, 0, 0, 4),
        std::invalid_argument);
}

TEST(BatchEngine, ExecuteBatchedMatchesSerialPerLane)
{
    // Whole-plan batched execution must be bit-identical, per lane, to
    // B independent serial executions — for every kernel kind and for
    // batch widths below, at, and above the SIMD lane count (the 5
    // exercises the remainder tail).
    linalg::Rng rng(204);
    const std::size_t n = 10;
    const std::vector<sim::KernelOp> kinds = opsOfEveryKind(rng);
    const sim::Plan plan(n, kinds, sim::PlanStats{});

    for (const std::size_t B : {std::size_t{1}, std::size_t{2},
                                std::size_t{5}, std::size_t{8}}) {
        std::vector<CVector> states;
        for (std::size_t t = 0; t < B; ++t)
            states.push_back(randomState(rng, n));

        sim::BatchState batch = sim::BatchState::pack(states);
        sim::executeBatched(plan, batch);
        for (std::size_t t = 0; t < B; ++t) {
            CVector serial = states[t];
            for (const sim::KernelOp &op : kinds)
                sim::executeOp(op, serial.data(), n);
            EXPECT_TRUE(bitIdentical(batch.unpackLane(t), serial))
                << "B=" << B << " lane=" << t;
        }
    }

    sim::BatchState wrong(n + 1, 2);
    EXPECT_THROW(sim::executeBatched(plan, wrong), std::invalid_argument);
}

TEST(BatchEngine, ChunkedBatchedSweepsAreBitIdentical)
{
    // State-parallel chunking of a batched sweep must be bit-identical
    // to the serial batched sweep for every kernel kind, every chunk
    // size, and a remainder batch width. n = 14 clears the batched
    // parallel cutoff for all kinds.
    linalg::Rng rng(109); // the test_simd seed: same ops at n = 14.
    const std::size_t n = 14;
    const std::size_t B = 5;
    sim::ThreadPool pool(3);

    std::vector<sim::KernelOp> ops;
    {
        sim::KernelOp op;
        op.kind = sim::KernelKind::OneQ;
        op.q0 = 5;
        const Matrix u = linalg::haarUnitary(rng, 2);
        for (std::size_t i = 0; i < 4; ++i)
            op.m[i] = u(i / 2, i % 2);
        ops.push_back(op);
    }
    {
        sim::KernelOp op;
        op.kind = sim::KernelKind::OneQDiag;
        op.q0 = 12;
        const Matrix rz = qop::rz(0.377);
        op.m[0] = rz(0, 0);
        op.m[1] = rz(1, 1);
        ops.push_back(op);
    }
    {
        sim::KernelOp op;
        op.kind = sim::KernelKind::TwoQ;
        op.q0 = 3;
        op.q1 = 11;
        const Matrix u = linalg::haarUnitary(rng, 4);
        for (std::size_t i = 0; i < 16; ++i)
            op.m[i] = u(i / 4, i % 4);
        ops.push_back(op);
    }
    {
        sim::KernelOp op;
        op.kind = sim::KernelKind::TwoQDiag;
        op.q0 = 13;
        op.q1 = 2;
        op.m[0] = Complex{1.0, 0.0};
        op.m[1] = std::polar(1.0, 0.7);
        op.m[2] = std::polar(1.0, -0.2);
        op.m[3] = std::polar(1.0, 1.9);
        ops.push_back(op);
    }
    {
        sim::KernelOp op;
        op.kind = sim::KernelKind::Dense;
        op.dense = linalg::haarUnitary(rng, 8);
        op.qubits = {9, 1, 6};
        ops.push_back(op);
    }

    std::vector<CVector> states;
    for (std::size_t t = 0; t < B; ++t)
        states.push_back(randomState(rng, n));

    for (const sim::KernelOp &op : ops) {
        sim::BatchState serial = sim::BatchState::pack(states);
        sim::executeOpBatched(op, serial);
        for (const std::size_t chunk : {std::size_t{0}, std::size_t{100},
                                        std::size_t{1024}}) {
            sim::BatchState parallel = sim::BatchState::pack(states);
            sim::ExecOptions exec;
            exec.pool = &pool;
            exec.chunk = chunk;
            sim::executeOpBatched(op, parallel, exec);
            for (std::size_t t = 0; t < B; ++t)
                EXPECT_TRUE(bitIdentical(parallel.unpackLane(t),
                                         serial.unpackLane(t)))
                    << "kind=" << static_cast<int>(op.kind)
                    << " chunk=" << chunk << " lane=" << t;
        }
    }
}

TEST(BatchNoise, LaneDepolarizingMatchesSerialTrajectory)
{
    // A batched trajectory — shared SoA gate sweeps, per-lane noise
    // draws — must reproduce each serial trajectory bit for bit,
    // starting from |0...0> (exact zeros everywhere, the inputs where
    // negation flavours could diverge).
    linalg::Rng oprng(205);
    const std::size_t n = 5;
    const std::size_t B = 4;
    const Matrix u4 = linalg::haarSU(oprng, 4);
    sim::KernelOp quad;
    quad.kind = sim::KernelKind::TwoQ;
    quad.q0 = 1;
    quad.q1 = 3;
    for (std::size_t i = 0; i < 16; ++i)
        quad.m[i] = u4(i / 4, i % 4);
    const double p2 = 0.35, p1 = 0.2; // high rates: every Pauli fires.

    // Serial reference: one statevector per trajectory.
    std::vector<CVector> expect;
    for (std::size_t t = 0; t < B; ++t) {
        linalg::Rng rng(sim::streamSeed(99, t));
        CVector amps(std::size_t{1} << n, Complex{0.0, 0.0});
        amps[0] = 1.0;
        for (int step = 0; step < 6; ++step) {
            sim::executeOp(quad, amps.data(), n);
            circuit::applyDepolarizing(amps.data(), n, quad.q0, quad.q1,
                                       p2, rng);
            circuit::applyDepolarizing(amps.data(), n, quad.q0, p1, rng);
            circuit::applyDepolarizing(amps.data(), n, quad.q1, p1, rng);
        }
        expect.push_back(std::move(amps));
    }

    // Batched: one SoA sweep per step, lane-divergent noise.
    std::vector<linalg::Rng> rngs;
    for (std::size_t t = 0; t < B; ++t)
        rngs.emplace_back(sim::streamSeed(99, t));
    sim::BatchState batch(n, B);
    for (int step = 0; step < 6; ++step) {
        sim::executeOpBatched(quad, batch);
        for (std::size_t l = 0; l < B; ++l) {
            circuit::applyDepolarizing(batch, l, quad.q0, quad.q1, p2,
                                       rngs[l]);
            circuit::applyDepolarizing(batch, l, quad.q0, p1, rngs[l]);
            circuit::applyDepolarizing(batch, l, quad.q1, p1, rngs[l]);
        }
    }
    for (std::size_t t = 0; t < B; ++t)
        EXPECT_TRUE(bitIdentical(batch.unpackLane(t), expect[t]))
            << "lane " << t;

    // Lane and parameter validation on the batched overloads.
    linalg::Rng rng(1);
    EXPECT_THROW(circuit::applyDepolarizing(batch, B, 0, p1, rng),
                 std::invalid_argument);
    EXPECT_THROW(circuit::applyDepolarizing(batch, 0, 2, 2, p2, rng),
                 std::invalid_argument);
    EXPECT_THROW(circuit::applyDepolarizing(batch, 0, 0, -0.1, rng),
                 std::invalid_argument);
}

TEST(BatchRunner, RunBatchedIsScheduleInvariantWithRemainder)
{
    // runBatched must reproduce run() exactly — same RNG streams, same
    // result slots — for any (trajWorkers, stateThreads) split and a
    // count that is not a multiple of the lane width (11 = 2 full tiles
    // of 4 plus a remainder of 3).
    linalg::Rng crng(206);
    const std::size_t n = 8;
    circuit::Circuit c(n);
    for (std::size_t q = 0; q + 1 < n; q += 2)
        c.add(linalg::haarSU(crng, 4), {q, q + 1});
    const sim::Plan plan = sim::compile(c);

    const sim::TrajectoryRunner::Body serialBody =
        [&](std::size_t, linalg::Rng &rng, const sim::ExecOptions &) {
            CVector amps = sim::run(plan);
            return std::norm(amps[rng.index(amps.size())]);
        };
    const sim::TrajectoryRunner::BatchBody batchBody =
        [&](std::size_t, std::size_t lanes, linalg::Rng *rngs,
            const sim::ExecOptions &, double *out) {
            sim::BatchState batch(n, lanes);
            sim::executeBatched(plan, batch);
            for (std::size_t l = 0; l < lanes; ++l) {
                const std::size_t pick = rngs[l].index(batch.dim());
                out[l] = std::norm(batch.amp(pick, l));
            }
        };

    sim::TrajectoryRunner serial(1, 1);
    const std::vector<double> reference = serial.run(11, 88, serialBody);
    ASSERT_EQ(reference.size(), 11u);

    for (const auto &[traj, state] :
         {std::pair<std::size_t, std::size_t>{1, 1}, {4, 1}, {2, 2}}) {
        sim::TrajectoryRunner runner(traj, state);
        const std::vector<double> got =
            runner.runBatched(11, 88, 4, batchBody);
        ASSERT_EQ(got.size(), reference.size());
        for (std::size_t i = 0; i < got.size(); ++i)
            EXPECT_EQ(got[i], reference[i])
                << "traj=" << traj << " state=" << state << " i=" << i;
        EXPECT_EQ(runner.sumBatched(11, 88, 4, batchBody),
                  serial.sum(11, 88, serialBody));
    }

    EXPECT_THROW(serial.runBatched(4, 88, 0, batchBody),
                 std::invalid_argument);
    EXPECT_TRUE(serial.runBatched(0, 88, 4, batchBody).empty());
}

TEST(BatchRunner, TrajParallelArmSpawnsNoStatePools)
{
    // Satellite contract: the pure trajectory-parallel arm
    // (stateThreads <= 1) must never construct per-slot sweep pools.
    // Pinned through the traj.state_pool_spawns counter.
    if (!obs::compiledIn())
        GTEST_SKIP() << "obs not compiled in";
    obs::TraceSession session;
    session.start();
    {
        sim::TrajectoryRunner trajOnly(4, 1);
        EXPECT_EQ(obs::counter("traj.state_pool_spawns").value(), 0);
    }
    {
        sim::TrajectoryRunner hybrid(2, 2);
        EXPECT_EQ(obs::counter("traj.state_pool_spawns").value(), 2);
    }
    session.stop();
}

TEST(BatchQv, SoaLanesDoesNotChangeHeavyOutput)
{
    // The QV harness must produce bit-identical heavy-output
    // proportions with SoA batching off, at the SIMD lane count, and at
    // a remainder-producing width. (10 trajectories over 4 lanes leaves
    // a 2-lane tail; 5 lanes leaves none but crosses the vector width.)
    qv::QvConfig cfg;
    cfg.width = 4;
    cfg.circuits = 4;
    cfg.trajectories = 10;
    cfg.seed = 31;
    cfg.threads = 1;
    cfg.soaLanes = 1;
    const qv::QvResult off = qv::heavyOutputExperiment(cfg);

    for (const int lanes : {4, 5}) {
        cfg.soaLanes = lanes;
        const qv::QvResult on = qv::heavyOutputExperiment(cfg);
        EXPECT_EQ(on.heavyOutputProportion, off.heavyOutputProportion)
            << "soaLanes=" << lanes;
    }

    // Auto mode (0) picks the heuristic; still bit-identical.
    cfg.soaLanes = 0;
    const qv::QvResult automatic = qv::heavyOutputExperiment(cfg);
    EXPECT_EQ(automatic.heavyOutputProportion, off.heavyOutputProportion);

    cfg.soaLanes = -1;
    EXPECT_THROW(qv::heavyOutputExperiment(cfg), std::invalid_argument);
}

} // namespace

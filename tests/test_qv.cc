/**
 * @file
 * Tests for routing and the quantum-volume harness.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "ashn/special.hh"
#include "qv/qv.hh"
#include "route/route.hh"
#include "weyl/weyl.hh"

namespace {

using namespace crisc;
using route::CouplingMap;
using route::Layout;

TEST(Route, GridAdjacency)
{
    const CouplingMap m = CouplingMap::grid(2, 3);
    ASSERT_EQ(m.numQubits(), 6u);
    EXPECT_TRUE(m.adjacent(0, 1));
    EXPECT_TRUE(m.adjacent(1, 4));
    EXPECT_FALSE(m.adjacent(0, 4));
    EXPECT_FALSE(m.adjacent(0, 5));
}

TEST(Route, GridForTruncatesConnected)
{
    for (std::size_t n : {2u, 3u, 5u, 7u, 8u}) {
        const CouplingMap m = CouplingMap::gridFor(n);
        ASSERT_EQ(m.numQubits(), n);
        // Connectivity: BFS reaches everything.
        for (std::size_t q = 1; q < n; ++q)
            EXPECT_FALSE(m.shortestPath(0, q).empty());
    }
}

TEST(Route, ShortestPathOnGrid)
{
    const CouplingMap m = CouplingMap::grid(3, 3);
    const auto path = m.shortestPath(0, 8);
    EXPECT_EQ(path.size(), 5u); // Manhattan distance 4.
    EXPECT_EQ(path.front(), 0u);
    EXPECT_EQ(path.back(), 8u);
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
        EXPECT_TRUE(m.adjacent(path[i], path[i + 1]));
}

TEST(Route, RoutePairMakesAdjacent)
{
    const CouplingMap m = CouplingMap::grid(3, 3);
    Layout layout(9);
    const auto swaps = route::routePair(m, layout, 0, 8);
    EXPECT_EQ(swaps.size(), 3u); // distance 4 -> 3 swaps.
    EXPECT_TRUE(m.adjacent(layout.physicalOf(0), layout.physicalOf(8)));
    // Layout stays a permutation.
    std::vector<bool> seen(9, false);
    for (std::size_t l = 0; l < 9; ++l) {
        const std::size_t p = layout.physicalOf(l);
        EXPECT_FALSE(seen[p]);
        seen[p] = true;
        EXPECT_EQ(layout.logicalOf(p), l);
    }
}

TEST(Route, AdjacentPairNeedsNoSwap)
{
    const CouplingMap m = CouplingMap::grid(2, 2);
    Layout layout(4);
    EXPECT_TRUE(route::routePair(m, layout, 0, 1).empty());
}

TEST(Qv, CompileCostsMatchPaperModel)
{
    using qv::NativeSet;
    const weyl::WeylPoint swap = ashn::swapPoint();
    const weyl::WeylPoint cnot = ashn::cnotPoint();

    const auto cz = qv::compileCost(NativeSet::CZ, swap, 0.0);
    EXPECT_EQ(cz.nativeGates, 3);
    EXPECT_NEAR(cz.totalTime, 3.0 * M_PI / std::sqrt(2.0), 1e-12);

    // CNOT class sits on the 2-SQiSW boundary x = y + |z|.
    const auto sq = qv::compileCost(NativeSet::SQiSW, cnot, 0.0);
    EXPECT_EQ(sq.nativeGates, 2);
    const auto sq3 = qv::compileCost(NativeSet::SQiSW, swap, 0.0);
    EXPECT_EQ(sq3.nativeGates, 3);

    const auto an = qv::compileCost(NativeSet::AshN, swap, 0.0);
    EXPECT_EQ(an.nativeGates, 1);
    EXPECT_NEAR(an.totalTime, 3.0 * M_PI / 4.0, 1e-12);
    // Near-identity gates under a cutoff pay the ND-EXT time.
    const auto tiny = qv::compileCost(NativeSet::AshN, {0.01, 0.0, 0.0}, 1.1);
    EXPECT_NEAR(tiny.totalTime, M_PI - 0.02, 1e-9);
}

TEST(Qv, NoiselessHeavyOutputIsHigh)
{
    // Without noise the heavy output proportion approaches the ideal
    // (1 + ln 2)/2 ~ 0.85 for Haar-random circuits.
    qv::QvConfig cfg;
    cfg.width = 3;
    cfg.native = qv::NativeSet::AshN;
    cfg.czError = 0.0;
    cfg.singleQubitError = 0.0;
    cfg.circuits = 30;
    cfg.trajectories = 1;
    const qv::QvResult r = qv::heavyOutputExperiment(cfg);
    EXPECT_GT(r.heavyOutputProportion, 0.75);
    EXPECT_LT(r.heavyOutputProportion, 0.95);
}

TEST(Qv, NoiseLowersHeavyOutput)
{
    qv::QvConfig clean;
    clean.width = 4;
    clean.czError = 0.0;
    clean.singleQubitError = 0.0;
    clean.circuits = 24;
    clean.trajectories = 1;
    clean.seed = 5;
    qv::QvConfig noisy = clean;
    noisy.czError = 0.03;
    noisy.singleQubitError = 0.001;
    noisy.trajectories = 24;
    const double hClean =
        qv::heavyOutputExperiment(clean).heavyOutputProportion;
    const double hNoisy =
        qv::heavyOutputExperiment(noisy).heavyOutputProportion;
    EXPECT_GT(hClean - hNoisy, 0.05);
}

TEST(Qv, AshnBeatsCzAtEqualErrorRate)
{
    // The headline of Figure 7: shorter gates, fewer native gates,
    // higher heavy-output proportion.
    qv::QvConfig cfg;
    cfg.width = 4;
    cfg.czError = 0.03;
    cfg.circuits = 20;
    cfg.trajectories = 10;
    cfg.seed = 9;
    cfg.native = qv::NativeSet::AshN;
    const double ashn =
        qv::heavyOutputExperiment(cfg).heavyOutputProportion;
    cfg.native = qv::NativeSet::CZ;
    const double czv = qv::heavyOutputExperiment(cfg).heavyOutputProportion;
    EXPECT_GT(ashn, czv + 0.02);
}

TEST(Qv, RejectsNegativeThreadCounts)
{
    // Regression: threads < 0 used to be silently clamped to 1; both
    // thread knobs now fail validation like every other bad config.
    qv::QvConfig cfg;
    cfg.width = 3;
    cfg.circuits = 1;
    cfg.trajectories = 1;
    cfg.threads = -1;
    EXPECT_THROW(qv::heavyOutputExperiment(cfg), std::invalid_argument);
    cfg.threads = 0;
    cfg.stateThreads = -3;
    EXPECT_THROW(qv::heavyOutputExperiment(cfg), std::invalid_argument);
}

TEST(Qv, StateParallelSweepsDoNotChangeResults)
{
    // The second parallel axis (stateThreads, explicit or width-
    // heuristic) must leave every aggregate bit-identical.
    qv::QvConfig cfg;
    cfg.width = 4;
    cfg.czError = 0.02;
    cfg.circuits = 4;
    cfg.trajectories = 6;
    cfg.seed = 13;
    cfg.threads = 2;
    cfg.stateThreads = 1;
    const qv::QvResult serial = qv::heavyOutputExperiment(cfg);
    for (int stateThreads : {2, 0}) {
        cfg.stateThreads = stateThreads;
        const qv::QvResult parallel = qv::heavyOutputExperiment(cfg);
        EXPECT_EQ(serial.heavyOutputProportion,
                  parallel.heavyOutputProportion);
        EXPECT_EQ(serial.avgNativeGatesPerCircuit,
                  parallel.avgNativeGatesPerCircuit);
        EXPECT_EQ(serial.avgSwapsPerCircuit, parallel.avgSwapsPerCircuit);
    }
}

TEST(Qv, SwapOverheadTracked)
{
    qv::QvConfig cfg;
    cfg.width = 5;
    cfg.circuits = 5;
    cfg.trajectories = 1;
    const qv::QvResult r = qv::heavyOutputExperiment(cfg);
    EXPECT_GT(r.avgSwapsPerCircuit, 0.0);
    EXPECT_GT(r.avgNativeGatesPerCircuit, 0.0);
    EXPECT_GT(r.avgTwoQubitTimePerCircuit, 0.0);
}

} // namespace

/**
 * @file
 * Tests for the circuit IR, statevector simulator, and noise channels.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "circuit/circuit.hh"
#include "circuit/noise.hh"
#include "linalg/random.hh"
#include "qop/gates.hh"
#include "qop/metrics.hh"

namespace {

using namespace crisc;
using circuit::Circuit;
using circuit::State;
using linalg::Matrix;

TEST(Circuit, BellStatePreparation)
{
    Circuit c(2);
    c.add(qop::hadamard(), {0}, "H");
    c.add(qop::cnot(), {0, 1}, "CX");
    State s(2);
    s.run(c);
    EXPECT_NEAR(s.probability(0), 0.5, 1e-12);
    EXPECT_NEAR(s.probability(3), 0.5, 1e-12);
    EXPECT_NEAR(s.probability(1), 0.0, 1e-12);
    EXPECT_NEAR(s.probability(2), 0.0, 1e-12);
}

TEST(Circuit, GhzOnFiveQubits)
{
    const std::size_t n = 5;
    Circuit c(n);
    c.add(qop::hadamard(), {0}, "H");
    for (std::size_t q = 0; q + 1 < n; ++q)
        c.add(qop::cnot(), {q, q + 1}, "CX");
    State s(n);
    s.run(c);
    EXPECT_NEAR(s.probability(0), 0.5, 1e-12);
    EXPECT_NEAR(s.probability((1u << n) - 1), 0.5, 1e-12);
}

TEST(Circuit, ToUnitaryMatchesStateEvolution)
{
    linalg::Rng rng(3);
    Circuit c(3);
    c.add(linalg::haarUnitary(rng, 4), {1, 2}, "U12");
    c.add(linalg::haarUnitary(rng, 2), {0}, "U0");
    c.add(linalg::haarUnitary(rng, 4), {0, 2}, "U02");
    const Matrix u = c.toUnitary();
    State s(3);
    s.run(c);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_NEAR(std::abs(s.amplitudes()[i] - u(i, 0)), 0.0, 1e-10);
}

TEST(Circuit, NonAdjacentTwoQubitGate)
{
    // CNOT on (2, 0) of three qubits: control 2, target 0.
    Circuit c(3);
    c.add(qop::pauliX(), {2}, "X");
    c.add(qop::cnot(), {2, 0}, "CX");
    State s(3);
    s.run(c);
    // |001> then control=q2=1 flips q0 -> |101> = index 5.
    EXPECT_NEAR(s.probability(5), 1.0, 1e-12);
}

TEST(Circuit, EmbedAgreesWithKron)
{
    linalg::Rng rng(5);
    const Matrix u = linalg::haarUnitary(rng, 2);
    const Matrix direct = qop::embed(u, {1}, 3);
    const Matrix expected =
        linalg::kron(qop::pauliI(), linalg::kron(u, qop::pauliI()));
    EXPECT_TRUE(linalg::approxEqual(direct, expected, 1e-12));
}

TEST(Circuit, RejectsBadArguments)
{
    Circuit c(2);
    EXPECT_THROW(c.add(qop::cnot(), {0}), std::invalid_argument);
    EXPECT_THROW(c.add(qop::hadamard(), {5}), std::invalid_argument);
    State s(2);
    EXPECT_THROW(s.apply(qop::cnot(), {0}), std::invalid_argument);
}

TEST(Noise, ZeroProbabilityIsIdentity)
{
    linalg::Rng rng(7);
    State s(2);
    s.apply(qop::hadamard(), {0});
    const auto before = s.amplitudes();
    circuit::applyDepolarizing(s, {0, 1}, 0.0, rng);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(before[i], s.amplitudes()[i]);
}

TEST(Noise, DepolarizingDamagesFidelityAtExpectedRate)
{
    // With probability p a non-identity Pauli hits; fidelity with the
    // noiseless state then drops. Measure the empirical rate.
    linalg::Rng rng(11);
    const double p = 0.3;
    int hits = 0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
        State clean(2);
        clean.apply(qop::hadamard(), {0});
        clean.apply(qop::cnot(), {0, 1});
        State noisy = clean;
        circuit::applyDepolarizing(noisy, {0, 1}, p, rng);
        if (noisy.fidelityWith(clean) < 0.999)
            ++hits;
    }
    // 12 of the 15 non-identity two-qubit Paulis move the Bell state;
    // the 3 stabilizers (XX, -YY, ZZ) leave it invariant.
    const double expected = p * 12.0 / 15.0;
    EXPECT_NEAR(static_cast<double>(hits) / trials, expected, 0.03);
}

TEST(Noise, RejectsOutOfRangeErrorParameter)
{
    // p outside [0, 1] (or NaN) is not a depolarizing channel; every
    // overload must reject it instead of silently sampling with it.
    linalg::Rng rng(13);
    State s(2);
    linalg::CVector raw = s.amplitudes();
    for (const double p : {-0.25, 1.5,
                           std::numeric_limits<double>::quiet_NaN()}) {
        EXPECT_THROW(circuit::applyDepolarizing(s, {0, 1}, p, rng),
                     std::invalid_argument);
        EXPECT_THROW(circuit::applyDepolarizing(raw.data(), 2, {0, 1}, p,
                                                rng),
                     std::invalid_argument);
        EXPECT_THROW(circuit::applyDepolarizing(raw.data(), 2,
                                                std::size_t{0}, p, rng),
                     std::invalid_argument);
        EXPECT_THROW(circuit::applyDepolarizing(raw.data(), 2,
                                                std::size_t{0},
                                                std::size_t{1}, p, rng),
                     std::invalid_argument);
    }
    // The boundaries themselves are valid.
    circuit::applyDepolarizing(s, {0, 1}, 0.0, rng);
    circuit::applyDepolarizing(s, {0, 1}, 1.0, rng);
}

TEST(Noise, RejectsDuplicateQubits)
{
    // A repeated qubit would compose two Paulis on one wire and sample
    // a different (non-depolarizing) channel; reject it up front.
    linalg::Rng rng(17);
    State s(3);
    linalg::CVector raw = s.amplitudes();
    EXPECT_THROW(circuit::applyDepolarizing(s, {1, 1}, 0.5, rng),
                 std::invalid_argument);
    EXPECT_THROW(circuit::applyDepolarizing(raw.data(), 3, {0, 2, 0}, 0.5,
                                            rng),
                 std::invalid_argument);
    EXPECT_THROW(circuit::applyDepolarizing(raw.data(), 3, std::size_t{2},
                                            std::size_t{2}, 0.5, rng),
                 std::invalid_argument);
}

TEST(Noise, PauliIndexing)
{
    EXPECT_TRUE(linalg::approxEqual(circuit::pauliByIndex(0), qop::pauliI()));
    EXPECT_TRUE(linalg::approxEqual(circuit::pauliByIndex(3), qop::pauliZ()));
    EXPECT_THROW(circuit::pauliByIndex(4), std::invalid_argument);
}

} // namespace

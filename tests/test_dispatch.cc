/**
 * @file
 * Runtime ISA dispatch suite (fast; runs under the CI sanitizer
 * matrix). One binary carries every backend the compiler could build
 * (sim/dispatch.hh), so this suite can force each of them in-process
 * and pin the whole contract: override parsing rejects unknown names,
 * forcing an uncompiled or host-unsupported backend throws rather than
 * silently falling back, "auto" resolves deterministically to the
 * first compiled+supported backend in probe order, every compiled
 * table covers every KernelKind with non-null entries, and every
 * selectable backend is bit-identical to forced-scalar over random
 * circuits covering all five KernelKinds on all four execution paths
 * (serial, state-parallel, SoA-batched, cache-blocked).
 */

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "circuit/circuit.hh"
#include "linalg/random.hh"
#include "qop/gates.hh"
#include "sim/batch.hh"
#include "sim/batch_state.hh"
#include "sim/dispatch.hh"
#include "sim/engine.hh"
#include "sim/kernels.hh"
#include "sim_test_util.hh"

namespace {

using namespace crisc;
using linalg::Complex;
using linalg::CVector;
using testutil::randomState;

bool
bitIdentical(const CVector &a, const CVector &b)
{
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].real() != b[i].real() || a[i].imag() != b[i].imag())
            return false;
    return true;
}

/** Restores the probe-resolved backend when a forcing test exits. */
struct DispatchRestore
{
    ~DispatchRestore() { sim::setDispatchOverride("auto"); }
};

constexpr sim::Backend kAllBackends[] = {
    sim::Backend::Scalar, sim::Backend::Avx2, sim::Backend::Avx512,
    sim::Backend::Neon};

/**
 * Random circuit whose compiled plan (with fusion off) covers all five
 * KernelKinds: dense and diagonal 1q, dense and diagonal 2q, and the
 * k = 3 dense fallback (same generator shape as test_blocked.cc).
 */
circuit::Circuit
randomCircuit(linalg::Rng &rng, std::size_t n, std::size_t gates)
{
    circuit::Circuit c(n);
    for (std::size_t g = 0; g < gates; ++g) {
        const std::size_t kind = rng.index(6);
        const std::size_t a = rng.index(n);
        std::size_t b = rng.index(n - 1);
        if (b >= a)
            ++b;
        switch (kind) {
          case 0:
            c.add(linalg::haarUnitary(rng, 2), {a}, "u1");
            break;
          case 1:
            c.add(qop::rz(rng.uniform(0.0, 6.28)), {a}, "rz");
            break;
          case 2:
            c.add(linalg::haarSU(rng, 4), {a, b}, "u2");
            break;
          case 3:
            c.add(qop::cz(), {a, b}, "cz");
            break;
          case 4:
            c.add(qop::cnot(), {a, b}, "cx");
            break;
          default: {
            std::size_t d = rng.index(n - 2);
            for (std::size_t q : {std::min(a, b), std::max(a, b)})
                if (d >= q)
                    ++d;
            c.add(linalg::haarUnitary(rng, 8), {a, b, d}, "u3");
            break;
          }
        }
    }
    return c;
}

sim::Plan
compileUnfused(const circuit::Circuit &c)
{
    return sim::compile(c,
                        {.fuseSingleQubit = false, .fuseTwoQubit = false});
}

// ---------------------------------------------------------------------
// Override parsing and reject-loud forcing.
// ---------------------------------------------------------------------

TEST(Dispatch, ParseOverrideAcceptsNamesAndAuto)
{
    EXPECT_EQ(sim::parseDispatchOverride("auto"), std::nullopt);
    EXPECT_EQ(sim::parseDispatchOverride(""), std::nullopt);
    EXPECT_EQ(sim::parseDispatchOverride("scalar"), sim::Backend::Scalar);
    EXPECT_EQ(sim::parseDispatchOverride("avx2"), sim::Backend::Avx2);
    EXPECT_EQ(sim::parseDispatchOverride("avx512"), sim::Backend::Avx512);
    EXPECT_EQ(sim::parseDispatchOverride("neon"), sim::Backend::Neon);
}

TEST(Dispatch, ParseOverrideRejectsUnknownNames)
{
    EXPECT_THROW(sim::parseDispatchOverride("sse2"),
                 std::invalid_argument);
    EXPECT_THROW(sim::parseDispatchOverride("AVX2"),
                 std::invalid_argument);
    EXPECT_THROW(sim::parseDispatchOverride("scalar "),
                 std::invalid_argument);
    EXPECT_THROW(sim::setDispatchOverride("fastest"),
                 std::invalid_argument);
}

TEST(Dispatch, ForcingUncompiledBackendThrows)
{
    // A binary never carries both x86 and aarch64 backends, so at least
    // one of the four is always absent — forcing it must throw, not
    // fall back.
    DispatchRestore restore;
    bool sawUncompiled = false;
    for (const sim::Backend b : kAllBackends) {
        if (sim::backendCompiled(b))
            continue;
        sawUncompiled = true;
        EXPECT_THROW(sim::setDispatchOverride(sim::backendName(b)),
                     std::runtime_error)
            << sim::backendName(b);
    }
    EXPECT_TRUE(sawUncompiled);

    // Compiled but host-unsupported (e.g. an avx512 TU on a non-avx512
    // machine) must throw the same way.
    for (const sim::Backend b : kAllBackends) {
        if (!sim::backendCompiled(b) || sim::hostSupports(b))
            continue;
        EXPECT_THROW(sim::setDispatchOverride(sim::backendName(b)),
                     std::runtime_error)
            << sim::backendName(b);
    }

    // A failed force never disturbs the resolved backend.
    EXPECT_TRUE(sim::backendCompiled(sim::activeBackend()));
    EXPECT_TRUE(sim::hostSupports(sim::activeBackend()));
}

TEST(Dispatch, AutoResolvesDeterministically)
{
    DispatchRestore restore;
    sim::setDispatchOverride("auto");
    const sim::Backend first = sim::activeBackend();
    sim::setDispatchOverride("auto");
    EXPECT_EQ(sim::activeBackend(), first);
    EXPECT_EQ(sim::activeKernels().backend, first);
    EXPECT_STREQ(sim::backendName(), sim::backendName(first));
    EXPECT_STREQ(sim::simdBackendName(), sim::backendName(first));
    EXPECT_EQ(sim::simdLanes(), sim::activeKernels().lanes);

    // The probe picks the first compiled backend the host supports, in
    // probe order — no compiled+supported backend precedes it.
    const std::vector<sim::Backend> compiled = sim::compiledBackends();
    EXPECT_TRUE(sim::backendCompiled(first));
    EXPECT_TRUE(sim::hostSupports(first));
    for (const sim::Backend b : compiled) {
        if (b == first)
            break;
        EXPECT_FALSE(sim::hostSupports(b)) << sim::backendName(b);
    }
}

// ---------------------------------------------------------------------
// Table completeness: every KernelKind populated for every compiled
// backend.
// ---------------------------------------------------------------------

TEST(Dispatch, EveryCompiledTableIsComplete)
{
    const std::vector<sim::Backend> compiled = sim::compiledBackends();
    ASSERT_FALSE(compiled.empty());
    EXPECT_TRUE(sim::backendCompiled(sim::Backend::Scalar));

    for (const sim::Backend b : compiled) {
        const sim::KernelTable &t = sim::kernelTable(b);
        EXPECT_EQ(t.backend, b);
        EXPECT_STREQ(t.name, sim::backendName(b));
        EXPECT_GE(t.lanes, 1u);

        EXPECT_NE(t.apply1q, nullptr);
        EXPECT_NE(t.apply1qDiag, nullptr);
        EXPECT_NE(t.applyPauli, nullptr);
        EXPECT_NE(t.apply2q, nullptr);
        EXPECT_NE(t.apply2qDiag, nullptr);
        EXPECT_NE(t.applyDense, nullptr);
        EXPECT_NE(t.apply1qRange, nullptr);
        EXPECT_NE(t.apply1qDiagRange, nullptr);
        EXPECT_NE(t.apply2qRange, nullptr);
        EXPECT_NE(t.apply2qDiagRange, nullptr);
        EXPECT_NE(t.applyDenseRange, nullptr);
        EXPECT_NE(t.apply1qBatchRange, nullptr);
        EXPECT_NE(t.apply1qDiagBatchRange, nullptr);
        EXPECT_NE(t.applyPauliBatchRange, nullptr);
        EXPECT_NE(t.apply2qBatchRange, nullptr);
        EXPECT_NE(t.apply2qDiagBatchRange, nullptr);
        EXPECT_NE(t.applyDenseBatchRange, nullptr);
        EXPECT_NE(t.applyPauliLane, nullptr);

        // Dense kernels carry no SIMD: one shared implementation.
        EXPECT_EQ(t.applyDense, &sim::detail::applyDenseShared);
        EXPECT_EQ(t.applyDenseRange, &sim::detail::applyDenseRangeShared);
    }
    const sim::KernelTable &scalar =
        sim::kernelTable(sim::Backend::Scalar);
    EXPECT_EQ(scalar.lanes, 1u);

    EXPECT_THROW(
        [] {
            for (const sim::Backend b : kAllBackends)
                if (!sim::backendCompiled(b))
                    (void)sim::kernelTable(b);
        }(),
        std::runtime_error);
}

// ---------------------------------------------------------------------
// Bitwise equivalence: every selectable backend vs forced scalar, over
// random circuits covering all five KernelKinds, on all four execution
// paths.
// ---------------------------------------------------------------------

TEST(Dispatch, EveryBackendBitIdenticalToScalarOnEveryPath)
{
    DispatchRestore restore;
    linalg::Rng rng(83);
    const std::size_t n = 10;
    const std::size_t lanes = 3;
    sim::ThreadPool pool(3);
    bool sawKind[5] = {false, false, false, false, false};

    // Force every compiled+supported backend by name, plus "auto" —
    // the override path the CI multi-ISA job uses.
    std::vector<std::string> selections{"auto"};
    for (const sim::Backend b : sim::compiledBackends())
        if (sim::hostSupports(b))
            selections.push_back(sim::backendName(b));

    for (int rep = 0; rep < 3; ++rep) {
        const circuit::Circuit c = randomCircuit(rng, n, 40);
        const sim::Plan plan = compileUnfused(c);
        for (const sim::KernelOp &op : plan.ops())
            sawKind[static_cast<int>(op.kind)] = true;

        const CVector init = randomState(rng, n);
        std::vector<CVector> states;
        for (std::size_t l = 0; l < lanes; ++l)
            states.push_back(randomState(rng, n));

        // Forced-scalar references for each path.
        sim::setDispatchOverride("scalar");
        CVector refSerial = init;
        sim::execute(plan, refSerial.data());
        sim::BatchState refBatch = sim::BatchState::pack(states);
        sim::executeBatched(plan, refBatch);

        for (const std::string &sel : selections) {
            sim::setDispatchOverride(sel);

            // Serial sweep.
            CVector amps = init;
            sim::execute(plan, amps.data());
            EXPECT_TRUE(bitIdentical(amps, refSerial))
                << sel << " serial rep=" << rep;

            // State-parallel sweep (chunked across the pool).
            amps = init;
            sim::ExecOptions par;
            par.pool = &pool;
            par.chunk = 100;
            sim::execute(plan, amps.data(), par);
            EXPECT_TRUE(bitIdentical(amps, refSerial))
                << sel << " state-parallel rep=" << rep;

            // SoA-batched sweep (SIMD lanes across trajectories).
            sim::BatchState batch = sim::BatchState::pack(states);
            sim::executeBatched(plan, batch);
            for (std::size_t l = 0; l < lanes; ++l)
                EXPECT_TRUE(bitIdentical(batch.unpackLane(l),
                                         refBatch.unpackLane(l)))
                    << sel << " batched lane=" << l << " rep=" << rep;

            // Cache-blocked sweep.
            amps = init;
            sim::ExecOptions blk;
            blk.threads = 2;
            sim::executeBlocked(plan, amps.data(), 3, blk);
            EXPECT_TRUE(bitIdentical(amps, refSerial))
                << sel << " blocked rep=" << rep;
        }
    }
    for (int k = 0; k < 5; ++k)
        EXPECT_TRUE(sawKind[k]) << "kernel kind " << k << " never hit";
}

} // namespace

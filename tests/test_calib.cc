/**
 * @file
 * Tests for the calibration substrate: pulse envelopes, time-ordered
 * evolution, the Cartan double, phase-estimation readout, and the
 * instruction-set model fit.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "ashn/hamiltonian.hh"
#include "ashn/scheme.hh"
#include "ashn/special.hh"
#include "calib/cartan.hh"
#include "calib/model.hh"
#include "calib/pulse.hh"
#include "linalg/random.hh"
#include "linalg/decomp.hh"
#include "qop/gates.hh"
#include "qop/metrics.hh"
#include "weyl/measure.hh"
#include "weyl/weyl.hh"

namespace {

using namespace crisc;
using linalg::Complex;
using linalg::Matrix;
using weyl::WeylPoint;

TEST(Pulse, EnvelopeShapes)
{
    using calib::EnvelopeShape;
    EXPECT_EQ(calib::envelope(EnvelopeShape::Square, 0.5, 1.0, 0.2), 1.0);
    EXPECT_EQ(calib::envelope(EnvelopeShape::Trapezoid, 0.1, 1.0, 0.2), 0.5);
    EXPECT_EQ(calib::envelope(EnvelopeShape::Trapezoid, 0.5, 1.0, 0.2), 1.0);
    EXPECT_NEAR(calib::envelope(EnvelopeShape::Trapezoid, 0.95, 1.0, 0.2),
                0.25, 1e-12);
    EXPECT_NEAR(calib::envelope(EnvelopeShape::CosineRamp, 0.1, 1.0, 0.2),
                0.5, 1e-12);
    EXPECT_EQ(calib::envelope(EnvelopeShape::CosineRamp, 0.4, 1.0, 0.2), 1.0);
}

TEST(Pulse, SquareEnvelopeMatchesClosedForm)
{
    // Time-dependent evolution with a square envelope must reproduce the
    // time-independent propagator.
    const auto h = calib::pulsedHamiltonian(0.2, 0.7, 0.3, 0.4,
                                            calib::EnvelopeShape::Square,
                                            1.3, 0.0);
    const Matrix u = calib::evolveTimeDependent(h, 1.3, 600);
    const Matrix expected = ashn::evolve(1.3, 0.2, 0.7, 0.3, 0.4);
    EXPECT_LT(linalg::maxAbsDiff(u, expected), 1e-6);
}

TEST(Pulse, RampedEnvelopeShiftsCoordinates)
{
    // A trapezoidal ramp reduces the delivered pulse area, so the
    // realized chamber point moves; this is the calibration problem.
    const ashn::GateParams p = ashn::cnotClassParams(0.0);
    const auto h = calib::pulsedHamiltonian(
        0.0, p.omega1, p.omega2, p.delta,
        calib::EnvelopeShape::Trapezoid, p.tau, 0.15 * p.tau);
    const Matrix u = calib::evolveTimeDependent(h, p.tau, 600);
    const WeylPoint got = weyl::weylCoordinates(u);
    EXPECT_GT(weyl::pointDistance(got, ashn::cnotPoint()), 1e-3);
}

TEST(Pulse, EvolutionIsUnitary)
{
    const auto h = calib::pulsedHamiltonian(0.1, 1.0, 0.5, 0.2,
                                            calib::EnvelopeShape::CosineRamp,
                                            2.0, 0.4);
    EXPECT_TRUE(linalg::isUnitary(calib::evolveTimeDependent(h, 2.0, 300),
                                  1e-10));
}

TEST(Cartan, CoordinatesRecoveredWithHint)
{
    // gamma(U) determines exp(2i eta.Sigma); with the intended point as
    // prior (as in a real calibration), eta is recovered exactly,
    // independent of the single-qubit content of U.
    linalg::Rng rng(3);
    for (int t = 0; t < 10; ++t) {
        const Matrix u = linalg::haarUnitary(rng, 4);
        const WeylPoint direct = weyl::weylCoordinates(u);
        const WeylPoint viaCartan =
            calib::coordinatesFromCartanDouble(u, &direct);
        EXPECT_LT(weyl::pointDistance(direct, viaCartan), 1e-6);
    }
}

TEST(Cartan, UnhintedReconstructionIsAValidSquareRoot)
{
    // Without a prior the reconstruction must still be a valid square
    // root: its doubled canonical gate shares the spectrum of the true
    // point's doubled canonical gate.
    linalg::Rng rng(5);
    auto doubledPhases = [](const WeylPoint &p) {
        const Matrix can = qop::canonicalGate(p.x, p.y, p.z);
        const auto es = linalg::eigNormal(can * can);
        std::vector<double> ph;
        for (const auto &v : es.values)
            ph.push_back(std::arg(v));
        std::sort(ph.begin(), ph.end());
        return ph;
    };
    auto wrap = [](double a) {
        while (a > M_PI)
            a -= 2 * M_PI;
        while (a <= -M_PI)
            a += 2 * M_PI;
        return a;
    };
    for (int t = 0; t < 6; ++t) {
        const Matrix u = linalg::haarUnitary(rng, 4);
        const WeylPoint direct = weyl::weylCoordinates(u);
        const WeylPoint rec = calib::coordinatesFromCartanDouble(u);
        const auto p1 = doubledPhases(direct);
        const auto p2 = doubledPhases(rec);
        // The doubled spectra agree up to the unknowable global phase
        // branch (a multiple of pi/2).
        double best = 1e300;
        for (int k = 0; k < 4; ++k) {
            std::vector<double> shifted;
            for (double v : p2)
                shifted.push_back(wrap(v + k * M_PI / 2.0));
            std::sort(shifted.begin(), shifted.end());
            double worst = 0.0;
            for (int i = 0; i < 4; ++i)
                worst = std::max(worst, std::abs(wrap(p1[i] - shifted[i])));
            best = std::min(best, worst);
        }
        EXPECT_LT(best, 1e-6);
    }
}

TEST(Cartan, ThetaInverseRealizedByReversedPulse)
{
    // Paper Fig. 4: Theta^{-1}(U) = YY U^T YY equals the evolution under
    // the time-reversed waveform with flipped drive signs,
    // -YY H(T-t)^T YY = H(-Omega1, -Omega2, -delta) at mirrored times.
    const double T = 1.1, rise = 0.2;
    const auto fwd = calib::pulsedHamiltonian(
        0.15, 0.9, 0.4, 0.3, calib::EnvelopeShape::Trapezoid, T, rise);
    const Matrix u = calib::evolveTimeDependent(fwd, T, 800);

    const auto rev = [&](double t) {
        // YY H(T-t)^T YY: the same waveform played backwards with the
        // drive signs flipped (coupling and ZZ unchanged).
        const Matrix h = fwd(T - t);
        return Matrix(qop::pauliYY() * h.transpose() * qop::pauliYY());
    };
    const Matrix w = calib::evolveTimeDependent(rev, T, 800);
    EXPECT_LT(linalg::maxAbsDiff(w, calib::thetaInverse(u)), 1e-6);
}

TEST(Cartan, ReversedDriveSignsForSquarePulse)
{
    // -theta(H(Omega1, Omega2, delta)) = H(-Omega1, -Omega2, -delta) for
    // the square-pulse Hamiltonian (paper Sec. 5.1).
    const Matrix h = ashn::hamiltonian(0.3, 0.8, 0.2, 0.5);
    const Matrix lhs = Complex{-1.0, 0.0} *
                       (qop::pauliYY() * h.transpose() * qop::pauliYY());
    // H is symmetric and theta(H) = YY H YY; the identity says the
    // flipped-drive Hamiltonian is recovered up to overall sign of the
    // coupling part... verify the concrete statement instead:
    const Matrix rhs = Complex{-1.0, 0.0} * ashn::hamiltonian(0.3, -0.8,
                                                              -0.2, -0.5);
    EXPECT_LT(linalg::maxAbsDiff(lhs, rhs), 1e-12);
}

TEST(Cartan, PhaseEstimationConvergesWithShots)
{
    linalg::Rng rng(7);
    const Matrix u = ashn::evolve(1.1, 0.0, 0.8, 0.3, 0.2);
    const WeylPoint exact = weyl::weylCoordinates(u);
    const WeylPoint coarse =
        calib::estimateCoordinates(u, 4, 200, rng, &exact);
    const WeylPoint fine =
        calib::estimateCoordinates(u, 8, 4000, rng, &exact);
    EXPECT_LT(weyl::pointDistance(fine, exact), 0.01);
    EXPECT_LE(weyl::pointDistance(fine, exact),
              weyl::pointDistance(coarse, exact) + 0.01);
}

TEST(Model, ObjectiveVanishesForPerfectHardware)
{
    const calib::ControlModel ideal;
    const std::vector<WeylPoint> probes = {
        ashn::cnotPoint(), ashn::bGatePoint(), {0.5, 0.3, 0.1}};
    EXPECT_LT(calib::modelObjective(ideal, ideal, probes, 0.0, 1.1), 1e-6);
}

TEST(Model, CalibrationRecoversTransferGains)
{
    const calib::ControlModel truth{1.07, 0.95, 1.12};
    // Probes must exercise every control channel: ND-sector points pin
    // the drive gains, EA-sector points (nonzero detuning) pin gainDelta.
    const std::vector<WeylPoint> probes = {{M_PI / 4.0, 0.1, 0.05},
                                           {0.7, 0.65, 0.5},
                                           {0.5, 0.45, -0.35},
                                           {0.6, 0.55, 0.3}};
    const calib::CalibrationResult r =
        calib::calibrateInstructionSet(truth, probes, 0.0, 1.1);
    EXPECT_GT(r.objectiveBefore, 1e-3);
    EXPECT_LT(r.objectiveAfter, 5e-4);
    EXPECT_NEAR(r.fitted.gainOmega1, truth.gainOmega1, 0.02);
    EXPECT_NEAR(r.fitted.gainOmega2, truth.gainOmega2, 0.02);
    EXPECT_NEAR(r.fitted.gainDelta, truth.gainDelta, 0.02);
}

TEST(Model, NelderMeadMinimizesQuadratic)
{
    auto f = [](const std::vector<double> &x) {
        return (x[0] - 2.0) * (x[0] - 2.0) + 3.0 * (x[1] + 1.0) * (x[1] + 1.0);
    };
    const std::vector<double> best =
        calib::nelderMead(f, {0.0, 0.0}, 0.5, 500, 1e-14);
    EXPECT_NEAR(best[0], 2.0, 1e-5);
    EXPECT_NEAR(best[1], -1.0, 1e-5);
}

} // namespace
